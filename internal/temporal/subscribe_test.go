package temporal_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"zipg"
	"zipg/internal/layout"
	"zipg/internal/store"
	"zipg/internal/temporal"
)

func buildSubGraph(t testing.TB, nNodes, shards int) *zipg.Graph {
	t.Helper()
	nodes := make([]layout.Node, nNodes)
	for i := range nodes {
		nodes[i] = layout.Node{ID: int64(i), Props: map[string]string{"name": fmt.Sprintf("n%d", i)}}
	}
	g, err := zipg.Compress(zipg.GraphData{Nodes: nodes},
		zipg.Options{NumShards: shards, SamplingRate: 8, LogStoreThreshold: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestSubscriptionGapFree hammers the group-committed write path from
// 16 concurrent writers (appends, deletes, node rewrites) while a
// firehose subscriber drains, and asserts the delivered events carry
// gap-free, monotone per-partition sequence numbers covering every
// mutation — the proof that the live tail loses nothing. Run under
// -race in CI.
func TestSubscriptionGapFree(t *testing.T) {
	g := buildSubGraph(t, 32, 4)
	defer g.Close()
	const writers, perWriter = 16, 120
	sub := g.Subscribe(zipg.SubscriptionFilter{}, writers*perWriter+64)
	defer sub.Close()

	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := int64(1000 + w)
			for i := 0; i < perWriter; i++ {
				var err error
				switch i % 8 {
				case 6:
					_, err = g.DeleteEdges(src, 1, int64(i%32))
				case 7:
					err = g.AppendNode(src, map[string]string{"name": fmt.Sprintf("w%d-%d", w, i)})
				default:
					err = g.AppendEdge(zipg.Edge{Src: src, Dst: int64(i % 32), Type: 1, Timestamp: int64(i + 1)})
				}
				if err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}

	delivered := 0
	lastSeq := map[int]uint64{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for delivered < writers*perWriter {
			evs, err := sub.Next(ctx, 256)
			if err != nil || evs == nil {
				return
			}
			for _, ev := range evs {
				delivered++
				if last, ok := lastSeq[ev.Part]; ok && ev.Seq != last+1 {
					t.Errorf("partition %d: seq %d after %d (gap)", ev.Part, ev.Seq, last)
					return
				}
				lastSeq[ev.Part] = ev.Seq
			}
		}
	}()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	<-done
	// AppendEdge may auto-create endpoint nodes (extra EvNodePut events),
	// so delivered is AT LEAST one event per op; with a big ring nothing
	// may be dropped, and every partition's tail must line up with the
	// store's own sequence counter.
	if delivered < writers*perWriter {
		t.Fatalf("delivered %d events, want >= %d", delivered, writers*perWriter)
	}
	if d := sub.Dropped(); d != 0 {
		t.Fatalf("dropped %d events with an oversized ring", d)
	}
	st := g.Store()
	for part, last := range lastSeq {
		if want := st.LastSeq(part); last != want {
			t.Fatalf("partition %d: consumer saw last seq %d, store at %d", part, last, want)
		}
	}
}

// TestCatchupMatchesLiveTail: replaying Catchup(sinceSeq=0) must yield
// exactly the events a from-the-start live subscriber saw, per
// partition — including delete tombstones.
func TestCatchupMatchesLiveTail(t *testing.T) {
	g := buildSubGraph(t, 16, 2)
	defer g.Close()
	eng := g.Temporal()
	sub := eng.Subscribe(temporal.Filter{}, 4096)
	defer sub.Close()

	for i := 0; i < 40; i++ {
		if err := g.AppendEdge(zipg.Edge{Src: int64(i % 8), Dst: int64(8 + i%8), Type: 2, Timestamp: int64(100 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g.DeleteEdges(3, 2, 11); err != nil {
		t.Fatal(err)
	}
	if err := g.DeleteNode(5); err != nil {
		t.Fatal(err)
	}
	if err := g.AppendNode(7, map[string]string{"name": "rewritten"}); err != nil {
		t.Fatal(err)
	}

	live := map[int][]store.Event{}
	for _, ev := range sub.Poll(0) {
		live[ev.Part] = append(live[ev.Part], ev)
	}
	sawNodeDel, sawEdgeDel := false, false
	for part := 0; part < g.Store().NumPartitions(); part++ {
		replay, ok := eng.Catchup(part, 0, temporal.Filter{})
		if !ok {
			t.Fatalf("partition %d: tail evicted past seq 0", part)
		}
		if len(replay) != len(live[part]) {
			t.Fatalf("partition %d: catchup %d events, live %d", part, len(replay), len(live[part]))
		}
		for i, ev := range replay {
			lv := live[part][i]
			if ev.Seq != lv.Seq || ev.Kind != lv.Kind || ev.Node != lv.Node ||
				ev.Edge.Src != lv.Edge.Src || ev.Edge.Dst != lv.Edge.Dst ||
				ev.Edge.Type != lv.Edge.Type || ev.Edge.Timestamp != lv.Edge.Timestamp {
				t.Fatalf("partition %d event %d: catchup %+v != live %+v", part, i, ev, lv)
			}
			switch ev.Kind {
			case store.EvNodeDel:
				sawNodeDel = true
			case store.EvEdgeDel:
				sawEdgeDel = true
			}
		}
	}
	if !sawNodeDel || !sawEdgeDel {
		t.Fatalf("tombstones missing from replay: nodeDel=%v edgeDel=%v", sawNodeDel, sawEdgeDel)
	}
}

// TestCatchupPartial: sinceSeq resumes mid-stream.
func TestCatchupPartial(t *testing.T) {
	g := buildSubGraph(t, 4, 1)
	defer g.Close()
	eng := g.Temporal()
	for i := 0; i < 10; i++ {
		if err := g.AppendNode(int64(i%4), map[string]string{"name": fmt.Sprint(i)}); err != nil {
			t.Fatal(err)
		}
	}
	evs, ok := eng.Catchup(0, 6, temporal.Filter{})
	if !ok {
		t.Fatal("tail evicted unexpectedly")
	}
	if len(evs) != 4 || evs[0].Seq != 7 || evs[3].Seq != 10 {
		t.Fatalf("Catchup(0, 6) = %d events, first seq %d", len(evs), evs[0].Seq)
	}
	// sinceSeq at or beyond the stream head: nothing to replay, and it
	// must not fabricate events.
	if evs, _ := eng.Catchup(0, 99, temporal.Filter{}); len(evs) != 0 {
		t.Fatalf("Catchup past head returned %d events", len(evs))
	}
}

// TestSubscriptionDropOldest: a tiny ring under more events than it
// holds keeps the NEWEST events and counts the discarded ones.
func TestSubscriptionDropOldest(t *testing.T) {
	g := buildSubGraph(t, 4, 1)
	defer g.Close()
	sub := g.Subscribe(zipg.SubscriptionFilter{}, 4)
	defer sub.Close()
	for i := 0; i < 10; i++ {
		if err := g.AppendNode(int64(i%4), map[string]string{"name": fmt.Sprint(i)}); err != nil {
			t.Fatal(err)
		}
	}
	evs := sub.Poll(0)
	if len(evs) != 4 {
		t.Fatalf("Poll returned %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(7 + i); ev.Seq != want {
			t.Fatalf("event %d: seq %d, want %d (drop-oldest must keep the newest)", i, ev.Seq, want)
		}
	}
	if d := sub.Dropped(); d != 6 {
		t.Fatalf("Dropped() = %d, want 6", d)
	}
}

// TestSubscriptionFilters: node and type filters select the right
// events, including edge events matching by destination.
func TestSubscriptionFilters(t *testing.T) {
	g := buildSubGraph(t, 8, 2)
	defer g.Close()
	nodeSub := g.Subscribe(temporal.FilterNode(3), 64)
	defer nodeSub.Close()
	typeSub := g.Subscribe(temporal.FilterType(9), 64)
	defer typeSub.Close()

	writes := []func() error{
		func() error { return g.AppendEdge(zipg.Edge{Src: 3, Dst: 1, Type: 9, Timestamp: 1}) }, // both
		func() error { return g.AppendEdge(zipg.Edge{Src: 2, Dst: 3, Type: 5, Timestamp: 2}) }, // node (dst)
		func() error { return g.AppendEdge(zipg.Edge{Src: 6, Dst: 7, Type: 9, Timestamp: 3}) }, // type
		func() error { return g.AppendNode(3, map[string]string{"name": "x"}) },                // node
		func() error { return g.AppendNode(4, map[string]string{"name": "y"}) },                // neither
	}
	for _, w := range writes {
		if err := w(); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(nodeSub.Poll(0)); got != 3 {
		t.Fatalf("node filter delivered %d events, want 3", got)
	}
	tevs := typeSub.Poll(0)
	if len(tevs) != 2 {
		t.Fatalf("type filter delivered %d events, want 2", len(tevs))
	}
	for _, ev := range tevs {
		if ev.Edge.Type != 9 {
			t.Fatalf("type filter passed edge type %d", ev.Edge.Type)
		}
	}
}

// TestNextUnblocksOnClose: a blocked Next returns promptly when the
// subscription closes.
func TestNextUnblocksOnClose(t *testing.T) {
	g := buildSubGraph(t, 4, 1)
	defer g.Close()
	sub := g.Subscribe(zipg.SubscriptionFilter{}, 8)
	done := make(chan struct{})
	go func() {
		defer close(done)
		evs, err := sub.Next(context.Background(), 0)
		if err != nil || evs != nil {
			t.Errorf("Next after Close = (%v, %v), want (nil, nil)", evs, err)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	sub.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Next did not unblock on Close")
	}
}
