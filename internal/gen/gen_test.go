package gen

import (
	"testing"

	"zipg/internal/layout"
	"zipg/internal/succinct"
)

func TestGenerateDeterministic(t *testing.T) {
	spec := DatasetSpec{Name: "x", Kind: RealWorld, TargetBytes: 200_000, AvgDegree: 10, Seed: 7}
	a, b := spec.Generate(), spec.Generate()
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatal("generation not deterministic in size")
	}
	for i := range a.Nodes {
		for k, v := range a.Nodes[i].Props {
			if b.Nodes[i].Props[k] != v {
				t.Fatal("generation not deterministic in content")
			}
		}
	}
	if a.Edges[5].Src != b.Edges[5].Src || a.Edges[5].Dst != b.Edges[5].Dst ||
		a.Edges[5].Timestamp != b.Edges[5].Timestamp ||
		a.Edges[5].Props["edgedata"] != b.Edges[5].Props["edgedata"] {
		t.Fatal("edges not deterministic")
	}
}

func TestGenerateShapes(t *testing.T) {
	for _, spec := range StandardSpecs(100_000) {
		d := spec.Generate()
		if d.NumNodes() < 16 {
			t.Fatalf("%s: too few nodes", spec.Name)
		}
		wantEdges := d.NumNodes() * spec.AvgDegree
		if d.NumEdges() != wantEdges {
			t.Fatalf("%s: edges = %d, want %d", spec.Name, d.NumEdges(), wantEdges)
		}
		// Property shape per kind.
		nprops := len(d.Nodes[0].Props)
		if spec.Kind == RealWorld && nprops != 40 {
			t.Fatalf("%s: %d node properties, want 40 (TAO)", spec.Name, nprops)
		}
		if spec.Kind == LinkBench && nprops != 1 {
			t.Fatalf("%s: %d node properties, want 1 (LinkBench)", spec.Name, nprops)
		}
		// Timestamps within the 50-day span.
		for _, e := range d.Edges[:100] {
			if e.Timestamp < timestampBase || e.Timestamp >= timestampBase+timestampSpan {
				t.Fatalf("%s: timestamp %d out of span", spec.Name, e.Timestamp)
			}
			if e.Type < 0 || e.Type >= int64(spec.NumEdgeTypes) {
				t.Fatalf("%s: bad edge type %d", spec.Name, e.Type)
			}
		}
	}
}

func TestSizeRatios(t *testing.T) {
	specs := StandardSpecs(1 << 20)
	if specs[1].TargetBytes*2 != specs[0].TargetBytes*25 {
		t.Fatal("twitter/orkut ratio wrong")
	}
	if specs[2].TargetBytes != specs[0].TargetBytes*32 {
		t.Fatal("uk/orkut ratio wrong")
	}
}

func TestDegreeSkew(t *testing.T) {
	d := DatasetSpec{Name: "skew", Kind: LinkBench, TargetBytes: 500_000, AvgDegree: 5, ZipfS: 1.5, Seed: 9}.Generate()
	deg := map[int64]int{}
	for _, e := range d.Edges {
		deg[e.Src]++
	}
	// The hottest node should hold far more than the average degree.
	max := 0
	for _, c := range deg {
		if c > max {
			max = c
		}
	}
	// The generator caps degrees at max(N/16, 4*avg); skew should still
	// push the hottest node to that cap's neighborhood.
	if max < 4*d.Spec.AvgDegree {
		t.Errorf("degree skew too weak: max degree %d, avg %d", max, d.Spec.AvgDegree)
	}
}

func TestCompressibilityContrast(t *testing.T) {
	// The real-world dataset must compress better than the LinkBench-like
	// one (§5.1: ≈15% worse for LinkBench).
	rw := DatasetSpec{Name: "rw", Kind: RealWorld, TargetBytes: 400_000, AvgDegree: 10, Seed: 11}.Generate()
	lb := DatasetSpec{Name: "lb", Kind: LinkBench, TargetBytes: 400_000, AvgDegree: 10, Seed: 12}.Generate()
	ratio := func(d *Dataset) float64 {
		ns, err := layout.NewPropertySchema(d.PropertyIDs(), 256)
		if err != nil {
			t.Fatal(err)
		}
		flat, _, _, err := layout.BuildNodeFile(d.Nodes, ns)
		if err != nil {
			t.Fatal(err)
		}
		st := succinct.Build(flat, succinct.Options{SamplingRate: 32})
		return float64(st.CompressedSize()) / float64(len(flat))
	}
	rwRatio, lbRatio := ratio(rw), ratio(lb)
	t.Logf("real-world ratio %.2f, linkbench ratio %.2f", rwRatio, lbRatio)
	if rwRatio >= lbRatio {
		t.Errorf("real-world (%.2f) should compress better than linkbench (%.2f)", rwRatio, lbRatio)
	}
}

func TestAccessSkew(t *testing.T) {
	a := NewAccess(3, 1000, 1.5)
	counts := map[int64]int{}
	for i := 0; i < 10000; i++ {
		id := a.Next()
		if id < 0 || id >= 1000 {
			t.Fatalf("access out of range: %d", id)
		}
		counts[id]++
	}
	if counts[0] < 1000 {
		t.Errorf("zipf head too cold: %d", counts[0])
	}
	u := NewAccess(4, 1000, 0)
	seen := map[int64]bool{}
	for i := 0; i < 5000; i++ {
		seen[u.Next()] = true
	}
	if len(seen) < 900 {
		t.Errorf("uniform access covered only %d ids", len(seen))
	}
}

func TestSampleValueHasHits(t *testing.T) {
	d := DatasetSpec{Name: "s", Kind: RealWorld, TargetBytes: 300_000, AvgDegree: 5, Seed: 13}.Generate()
	rng := NewAccess(5, d.NumNodes(), 0).Rng()
	// A sampled (pid, value) should match at least one node reasonably
	// often (pools have 64 values; with hundreds of nodes most values
	// appear).
	hits := 0
	for trial := 0; trial < 20; trial++ {
		pid := d.PropertyIDs()[rng.Intn(40)]
		val := d.SampleValue(rng, pid)
		for _, n := range d.Nodes {
			if n.Props[pid] == val {
				hits++
				break
			}
		}
	}
	if hits < 10 {
		t.Errorf("sampled values rarely present: %d/20", hits)
	}
}
