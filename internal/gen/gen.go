// Package gen generates the evaluation datasets and access-skew
// distributions. The paper evaluated on three real-world graphs (orkut,
// twitter, uk) annotated with the property distributions reported in the
// Facebook TAO paper, plus three LinkBench-generated graphs; none of
// that data ships here, so this package generates scaled synthetic
// equivalents that preserve what the experiments actually depend on:
//
//   - relative dataset sizes (Table 4's 20 GB : 250 GB : 636 GB becomes
//     1x : 12.5x : 32x at a configurable base size),
//   - Zipf-skewed degree distributions (hot nodes with huge
//     neighborhoods drive LinkBench's skew effects),
//   - the TAO property shape for "real-world" datasets (≈640 B of node
//     properties over 40 property IDs, 5 edge types, POSIX timestamps
//     spanning 50 days, one 128 B edge property), and
//   - the compressibility contrast: real-world property values come from
//     small vocabularies (compressible); LinkBench-like values are
//     uniform random alphanumerics (≈15% worse compression, §5.1).
package gen

import (
	"fmt"
	"math/rand"

	"zipg/internal/graphapi"
)

// Kind distinguishes the two dataset families of Table 4.
type Kind int

const (
	// RealWorld mimics orkut/twitter/uk with TAO property distributions.
	RealWorld Kind = iota
	// LinkBench mimics the LinkBench generator's output.
	LinkBench
)

// timestampBase and timestampSpan bound edge timestamps: a 50-day span
// of POSIX seconds (§5, Datasets).
const (
	timestampBase = int64(1_400_000_000)
	timestampSpan = int64(50 * 24 * 3600)
)

// DatasetSpec describes one dataset to generate.
type DatasetSpec struct {
	Name string
	Kind Kind
	// TargetBytes is the approximate uncompressed flat-layout size.
	TargetBytes int64
	// AvgDegree is edges per node (orkut ≈ 39, LinkBench ≈ 4.4).
	AvgDegree int
	// NumEdgeTypes is the number of distinct edge types (TAO uses 5).
	NumEdgeTypes int
	// ZipfS is the degree/access skew exponent (default 1.25).
	ZipfS float64
	Seed  int64
}

// Dataset is a generated graph plus the metadata query generators need.
type Dataset struct {
	Spec  DatasetSpec
	Nodes []graphapi.Node
	Edges []graphapi.Edge
	// Vocab holds, per property ID, the value pool used — queries sample
	// from it so that searches have hits.
	Vocab map[string][]string
	// RawBytes estimates the uncompressed flat-layout size.
	RawBytes int64
}

// realWorldPropertyIDs returns TAO-style property IDs: prop00..prop39.
func realWorldPropertyIDs() []string {
	ids := make([]string, 40)
	for i := range ids {
		ids[i] = fmt.Sprintf("prop%02d", i)
	}
	return ids
}

// vocabWord emits a compressible, word-like value of roughly n bytes.
func vocabWord(rng *rand.Rand, n int) string {
	syllables := []string{"an", "ber", "ca", "dor", "el", "fi", "gra", "hil", "it", "jo", "ka", "lu", "mon", "ne", "or", "pa"}
	out := make([]byte, 0, n+3)
	for len(out) < n {
		out = append(out, syllables[rng.Intn(len(syllables))]...)
	}
	return string(out[:n])
}

// randomWord emits an incompressible alphanumeric value of n bytes.
func randomWord(rng *rand.Rand, n int) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	out := make([]byte, n)
	for i := range out {
		out[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(out)
}

// Generate materializes the dataset.
func (spec DatasetSpec) Generate() *Dataset {
	if spec.AvgDegree <= 0 {
		spec.AvgDegree = 10
	}
	if spec.NumEdgeTypes <= 0 {
		spec.NumEdgeTypes = 5
	}
	if spec.ZipfS <= 1 {
		spec.ZipfS = 1.25
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	d := &Dataset{Spec: spec, Vocab: make(map[string][]string)}

	// Per-node byte estimates drive the node count for the byte target.
	var perNode int64
	var propIDs []string
	switch spec.Kind {
	case RealWorld:
		propIDs = realWorldPropertyIDs()
		perNode = 760 + int64(spec.AvgDegree)*150
	case LinkBench:
		propIDs = []string{"data"}
		perNode = 140 + int64(spec.AvgDegree)*150
	}
	nNodes := int(spec.TargetBytes / perNode)
	if nNodes < 16 {
		nNodes = 16
	}
	nEdges := nNodes * spec.AvgDegree

	// Build the vocabularies. Real-world property values repeat heavily
	// (locations, ages, affiliations): small pools make the flat files as
	// compressible as real social-graph data. LinkBench values are
	// uniform random bytes, reproducing its lower compressibility (§5.1).
	for _, pid := range propIDs {
		var pool []string
		switch spec.Kind {
		case RealWorld:
			// TAO: ≈640 B over 40 properties → ≈16 B values.
			pool = make([]string, 12)
			for i := range pool {
				pool[i] = vocabWord(rng, 12+rng.Intn(8))
			}
		case LinkBench:
			// LinkBench: one property, median 128 B, incompressible.
			pool = make([]string, 64)
			for i := range pool {
				pool[i] = randomWord(rng, 96+rng.Intn(64))
			}
		}
		d.Vocab[pid] = pool
	}
	var edgePropPool []string
	switch spec.Kind {
	case RealWorld:
		edgePropPool = make([]string, 8)
		for i := range edgePropPool {
			edgePropPool[i] = vocabWord(rng, 128) // 128 B edge property
		}
	case LinkBench:
		edgePropPool = make([]string, 64)
		for i := range edgePropPool {
			edgePropPool[i] = randomWord(rng, 96+rng.Intn(64))
		}
	}
	d.Vocab["edgedata"] = edgePropPool

	// Nodes.
	d.Nodes = make([]graphapi.Node, nNodes)
	for i := range d.Nodes {
		props := make(map[string]string, len(propIDs))
		for _, pid := range propIDs {
			props[pid] = d.Vocab[pid][rng.Intn(len(d.Vocab[pid]))]
		}
		d.Nodes[i] = graphapi.Node{ID: int64(i), Props: props}
	}

	// Edges: Zipf-skewed sources (hot nodes get huge neighborhoods),
	// uniform destinations. Out-degrees are capped at a fraction of the
	// node count — real graphs' maximum degrees are a few percent of N
	// (orkut ≈ 1%) and an uncapped Zipf head at small N would let one
	// node neighbor the whole graph.
	srcZipf := rand.NewZipf(rng, spec.ZipfS, 1, uint64(nNodes-1))
	maxDegree := nNodes / 16
	if min := 4 * spec.AvgDegree; maxDegree < min {
		maxDegree = min
	}
	degree := make([]int, nNodes)
	sampleSrc := func() int64 {
		for {
			s := int64(srcZipf.Uint64())
			if degree[s] < maxDegree {
				degree[s]++
				return s
			}
		}
	}
	d.Edges = make([]graphapi.Edge, nEdges)
	for i := range d.Edges {
		d.Edges[i] = graphapi.Edge{
			Src:       sampleSrc(),
			Dst:       int64(rng.Intn(nNodes)),
			Type:      int64(rng.Intn(spec.NumEdgeTypes)),
			Timestamp: timestampBase + rng.Int63n(timestampSpan),
			Props:     map[string]string{"edgedata": edgePropPool[rng.Intn(len(edgePropPool))]},
		}
	}

	// Estimate the raw layout size.
	for _, n := range d.Nodes {
		d.RawBytes += int64(propsBytes(n.Props)) + 42 // lengths header + delims
	}
	for _, e := range d.Edges {
		d.RawBytes += int64(propsBytes(e.Props)) + 24
	}
	return d
}

func propsBytes(props map[string]string) int {
	n := 0
	for k, v := range props {
		n += len(k)/8 + len(v) + 2
	}
	return n
}

// NumNodes returns the node count.
func (d *Dataset) NumNodes() int { return len(d.Nodes) }

// NumEdges returns the edge count.
func (d *Dataset) NumEdges() int { return len(d.Edges) }

// SampleValue returns a value from the pool of the given property ID.
func (d *Dataset) SampleValue(rng *rand.Rand, pid string) string {
	pool := d.Vocab[pid]
	return pool[rng.Intn(len(pool))]
}

// PropertyIDs returns the node property IDs present in the dataset.
func (d *Dataset) PropertyIDs() []string {
	if d.Spec.Kind == RealWorld {
		return realWorldPropertyIDs()
	}
	return []string{"data"}
}

// Access is a Zipf-skewed node-ID sampler modeling query skew (LinkBench
// accesses are "skewed towards nodes with more neighbors" — the same hot
// nodes that got the most edges, since both use the same Zipf rank
// order).
type Access struct {
	zipf *rand.Zipf
	rng  *rand.Rand
	n    int
}

// NewAccess builds a sampler over [0, n) with skew s (s <= 1 means
// uniform).
func NewAccess(seed int64, n int, s float64) *Access {
	rng := rand.New(rand.NewSource(seed))
	a := &Access{rng: rng, n: n}
	if s > 1 {
		a.zipf = rand.NewZipf(rng, s, 1, uint64(n-1))
	}
	return a
}

// Next samples a node ID.
func (a *Access) Next() int64 {
	if a.zipf == nil {
		return int64(a.rng.Intn(a.n))
	}
	return int64(a.zipf.Uint64())
}

// Rng exposes the sampler's random source for auxiliary draws.
func (a *Access) Rng() *rand.Rand { return a.rng }

// StandardSpecs returns the six datasets of Table 4 at the given base
// size (bytes for the smallest dataset). Sizes keep the paper's
// 1 : 12.5 : 32 on-disk ratios.
func StandardSpecs(base int64) []DatasetSpec {
	if base <= 0 {
		base = 1 << 20
	}
	return []DatasetSpec{
		{Name: "orkut", Kind: RealWorld, TargetBytes: base, AvgDegree: 39, NumEdgeTypes: 5, Seed: 101},
		{Name: "twitter", Kind: RealWorld, TargetBytes: base * 25 / 2, AvgDegree: 36, NumEdgeTypes: 5, Seed: 102},
		{Name: "uk", Kind: RealWorld, TargetBytes: base * 32, AvgDegree: 35, NumEdgeTypes: 5, Seed: 103},
		{Name: "lb-small", Kind: LinkBench, TargetBytes: base, AvgDegree: 5, NumEdgeTypes: 5, ZipfS: 1.5, Seed: 104},
		{Name: "lb-medium", Kind: LinkBench, TargetBytes: base * 25 / 2, AvgDegree: 5, NumEdgeTypes: 5, ZipfS: 1.5, Seed: 105},
		{Name: "lb-large", Kind: LinkBench, TargetBytes: base * 32, AvgDegree: 5, NumEdgeTypes: 5, ZipfS: 1.5, Seed: 106},
	}
}
