package core

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"zipg/internal/bitutil"
	"zipg/internal/layout"
	"zipg/internal/succinct"
)

// preCodecShardWire is shardWire as it existed before the codec layer:
// EdgeFormat is present (PR "hot-field record headers") but none of the
// codec fields are. Gob matches by name, so encoding it reproduces a
// pre-codec archive, and decoding a modern all-legacy blob into it
// proves the modern wire form is readable by pre-codec builds.
type preCodecShardWire struct {
	NodeStore    []byte
	EdgeStore    []byte
	NodeIDs      []int64
	NodeOffsets  []int64
	EdgeSrcs     []int64
	EdgeIndex    []layout.EdgeRecordIndex
	NodeSchema   layout.SchemaSpec
	EdgeSchema   layout.SchemaSpec
	RawNodeBytes int
	RawEdgeBytes int
	EdgeFormat   int
}

// checkShardsAgree asserts both shards answer node-property and edge
// queries identically.
func checkShardsAgree(t *testing.T, a, b *Shard, nodes []layout.Node) {
	t.Helper()
	for _, n := range nodes {
		pa, oka := a.Nodes().GetAllProps(n.ID)
		pb, okb := b.Nodes().GetAllProps(n.ID)
		if oka != okb || !reflect.DeepEqual(pa, pb) {
			t.Fatalf("node %d: %v/%v vs %v/%v", n.ID, pa, oka, pb, okb)
		}
	}
	for _, src := range a.EdgeSources() {
		for etype := int64(0); etype < 2; etype++ {
			ra, oka := a.Edges().GetEdgeRecord(src, etype)
			rb, okb := b.Edges().GetEdgeRecord(src, etype)
			if oka != okb {
				t.Fatalf("record (%d,%d): %v vs %v", src, etype, oka, okb)
			}
			if !oka {
				continue
			}
			if ra.Count != rb.Count {
				t.Fatalf("record (%d,%d) counts: %d vs %d", src, etype, ra.Count, rb.Count)
			}
			for i := 0; i < ra.Count; i++ {
				da, err1 := a.Edges().GetEdgeData(&ra, i)
				db, err2 := b.Edges().GetEdgeData(&rb, i)
				if err1 != nil || err2 != nil {
					t.Fatal(err1, err2)
				}
				if !reflect.DeepEqual(da, db) {
					t.Fatalf("record (%d,%d)[%d]: %+v vs %+v", src, etype, i, da, db)
				}
			}
		}
	}
	offA, okA := a.EdgeRecordOffset(a.EdgeSources()[0], 0)
	offB, okB := b.EdgeRecordOffset(a.EdgeSources()[0], 0)
	if okA != okB || offA != offB {
		t.Fatalf("EdgeRecordOffset diverged: %d/%v vs %d/%v", offA, okA, offB, okB)
	}
}

// TestPreCodecShardArchiveLoads proves shard archives serialized before
// the codec layer still load and answer identically: a gob blob built
// from the pre-codec wire struct (legacy offsets, row-form edge index,
// ZSUC1 succinct stores) must reconstruct a working shard.
func TestPreCodecShardArchiveLoads(t *testing.T) {
	fresh, nodes, edges := buildTestShard(t)

	ns := fresh.Nodes().Schema()
	es := fresh.Edges().Schema()
	nodeFlat, ids, offs, err := layout.BuildNodeFile(nodes, ns)
	if err != nil {
		t.Fatal(err)
	}
	edgeFlat, edgeIndex, err := layout.BuildEdgeFileFormat(edges, es, layout.EdgeFormatHot)
	if err != nil {
		t.Fatal(err)
	}
	// Legacy-codec stores marshal as ZSUC1 — byte-identical to pre-codec
	// builds (asserted by the succinct-level serial tests).
	opts := succinct.Options{SamplingRate: 4, Codec: bitutil.CodecForceLegacy}
	w := preCodecShardWire{
		NodeStore:    succinct.Build(nodeFlat, opts).MarshalBinary(),
		EdgeStore:    succinct.Build(edgeFlat, opts).MarshalBinary(),
		NodeIDs:      ids,
		NodeOffsets:  offs,
		EdgeSrcs:     distinctSources(edges),
		EdgeIndex:    edgeIndex,
		NodeSchema:   ns.Spec(),
		EdgeSchema:   es.Spec(),
		RawNodeBytes: len(nodeFlat),
		RawEdgeBytes: len(edgeFlat),
		EdgeFormat:   layout.EdgeFormatHot,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		t.Fatal(err)
	}

	loaded, err := UnmarshalShard(buf.Bytes(), nil)
	if err != nil {
		t.Fatalf("pre-codec archive failed to load: %v", err)
	}
	checkShardsAgree(t, fresh, loaded, nodes)
}

// TestLegacyShardWireIsPreCodecShape: a shard built with the forced
// legacy codec must marshal into the exact gob shape pre-codec builds
// wrote — every legacy field populated, no codec field present — so
// old readers can load archives written by this build.
func TestLegacyShardWireIsPreCodecShape(t *testing.T) {
	ns := mustSchema(t, []string{"city", "name"})
	es := mustSchema(t, []string{"w"})
	_, nodes, edges := buildTestShard(t)
	sh, err := Build(nodes, edges, ns, es, Options{SamplingRate: 4, Codec: bitutil.CodecForceLegacy})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := sh.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Decoding into the pre-codec struct sees all its fields; a blob
	// that used the Enc fields would leave NodeOffsets/EdgeIndex empty.
	var w preCodecShardWire
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&w); err != nil {
		t.Fatal(err)
	}
	if len(w.NodeOffsets) == 0 || len(w.EdgeIndex) == 0 {
		t.Fatalf("legacy shard marshaled without legacy fields (offsets=%d index=%d)",
			len(w.NodeOffsets), len(w.EdgeIndex))
	}
	// And the full modern struct must see the codec fields nil.
	var mw shardWire
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&mw); err != nil {
		t.Fatal(err)
	}
	if mw.NodeOffsetsEnc != nil || mw.EdgeIdxOffsEnc != nil {
		t.Fatal("legacy shard carried codec-tagged fields")
	}
}

// TestCodecShardRoundTrip: shards built under every policy round-trip
// through Marshal/Unmarshal preserving codec identity and answers.
func TestCodecShardRoundTrip(t *testing.T) {
	ns := mustSchema(t, []string{"city", "name"})
	es := mustSchema(t, []string{"w"})
	_, nodes, edges := buildTestShard(t)
	for _, policy := range []bitutil.CodecPolicy{
		bitutil.CodecAuto, bitutil.CodecForceLegacy,
		bitutil.CodecForceSimple8b, bitutil.CodecForceVarint,
	} {
		sh, err := Build(nodes, edges, ns, es, Options{SamplingRate: 4, Codec: policy})
		if err != nil {
			t.Fatalf("policy %v: %v", policy, err)
		}
		blob, err := sh.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		back, err := UnmarshalShard(blob, nil)
		if err != nil {
			t.Fatalf("policy %v: unmarshal: %v", policy, err)
		}
		checkShardsAgree(t, sh, back, nodes)

		// Region identity survives the round-trip.
		want := map[string]string{}
		for _, rc := range sh.CodecReport() {
			want[rc.Region] = rc.Codec
		}
		for _, rc := range back.CodecReport() {
			if want[rc.Region] != rc.Codec {
				t.Errorf("policy %v region %s: codec %s after reload, want %s",
					policy, rc.Region, rc.Codec, want[rc.Region])
			}
		}
	}
}

func mustSchema(t *testing.T, ids []string) *layout.PropertySchema {
	t.Helper()
	s, err := layout.NewPropertySchema(ids, 64)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
