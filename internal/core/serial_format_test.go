package core

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"zipg/internal/layout"
	"zipg/internal/succinct"
)

// oldShardWire is shardWire as it existed before the hot-field edge
// header shipped — no EdgeFormat field. Gob matches struct fields by
// name, so encoding it reproduces a pre-hot blob bit-for-bit in the
// ways that matter: decoding leaves shardWire.EdgeFormat zero, i.e.
// layout.EdgeFormatLegacy.
type oldShardWire struct {
	NodeStore    []byte
	EdgeStore    []byte
	NodeIDs      []int64
	NodeOffsets  []int64
	EdgeSrcs     []int64
	EdgeIndex    []layout.EdgeRecordIndex
	NodeSchema   layout.SchemaSpec
	EdgeSchema   layout.SchemaSpec
	RawNodeBytes int
	RawEdgeBytes int
}

// TestLegacyShardRoundTrip proves shards serialized before this change
// still load and serve: a wire blob with legacy-format edge bytes and
// no EdgeFormat field must decode to a working shard whose queries
// agree with a freshly built (hot-format) one.
func TestLegacyShardRoundTrip(t *testing.T) {
	hot, nodes, edges := buildTestShard(t)

	// Assemble the legacy blob exactly as the pre-hot code did: legacy
	// edge records, wire struct without the format field.
	ns := hot.Nodes().Schema()
	es := hot.Edges().Schema()
	nodeFlat, ids, offs, err := layout.BuildNodeFile(nodes, ns)
	if err != nil {
		t.Fatal(err)
	}
	edgeFlat, edgeIndex, err := layout.BuildEdgeFileFormat(edges, es, layout.EdgeFormatLegacy)
	if err != nil {
		t.Fatal(err)
	}
	opts := succinct.Options{SamplingRate: 4}
	w := oldShardWire{
		NodeStore:    succinct.Build(nodeFlat, opts).MarshalBinary(),
		EdgeStore:    succinct.Build(edgeFlat, opts).MarshalBinary(),
		NodeIDs:      ids,
		NodeOffsets:  offs,
		EdgeSrcs:     distinctSources(edges),
		EdgeIndex:    edgeIndex,
		NodeSchema:   ns.Spec(),
		EdgeSchema:   es.Spec(),
		RawNodeBytes: len(nodeFlat),
		RawEdgeBytes: len(edgeFlat),
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		t.Fatal(err)
	}

	legacy, err := UnmarshalShard(buf.Bytes(), nil)
	if err != nil {
		t.Fatalf("legacy blob failed to load: %v", err)
	}
	if legacy.EdgeFormat() != layout.EdgeFormatLegacy {
		t.Fatalf("EdgeFormat = %d, want legacy", legacy.EdgeFormat())
	}
	if hot.EdgeFormat() != layout.EdgeFormatHot {
		t.Fatalf("fresh build EdgeFormat = %d, want hot", hot.EdgeFormat())
	}

	// Identical query results across the format boundary.
	for _, n := range nodes {
		got, ok := legacy.Nodes().GetAllProps(n.ID)
		if !ok || !reflect.DeepEqual(got, n.Props) {
			t.Fatalf("legacy node %d: %v", n.ID, got)
		}
	}
	for _, src := range hot.EdgeSources() {
		for etype := int64(0); etype < 2; etype++ {
			href, hok := hot.Edges().GetEdgeRecord(src, etype)
			lref, lok := legacy.Edges().GetEdgeRecord(src, etype)
			if hok != lok {
				t.Fatalf("record (%d,%d): hot %v legacy %v", src, etype, hok, lok)
			}
			if !hok {
				continue
			}
			if href.Count != lref.Count {
				t.Fatalf("record (%d,%d) counts: %d vs %d", src, etype, href.Count, lref.Count)
			}
			for i := 0; i < href.Count; i++ {
				hd, err1 := hot.Edges().GetEdgeData(&href, i)
				ld, err2 := legacy.Edges().GetEdgeData(&lref, i)
				if err1 != nil || err2 != nil {
					t.Fatal(err1, err2)
				}
				if !reflect.DeepEqual(hd, ld) {
					t.Fatalf("record (%d,%d)[%d]: %+v vs %+v", src, etype, i, hd, ld)
				}
			}
		}
	}

	// The legacy shard re-marshals with its format preserved.
	blob, err := legacy.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	again, err := UnmarshalShard(blob, nil)
	if err != nil {
		t.Fatal(err)
	}
	if again.EdgeFormat() != layout.EdgeFormatLegacy {
		t.Fatalf("re-marshaled EdgeFormat = %d, want legacy", again.EdgeFormat())
	}
}
