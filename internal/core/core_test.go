package core

import (
	"fmt"
	"reflect"
	"testing"

	"zipg/internal/layout"
	"zipg/internal/memsim"
)

func buildTestShard(t testing.TB) (*Shard, []layout.Node, []layout.Edge) {
	t.Helper()
	ns, err := layout.NewPropertySchema([]string{"city", "name"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	es, err := layout.NewPropertySchema([]string{"w"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]layout.Node, 25)
	for i := range nodes {
		nodes[i] = layout.Node{ID: int64(i), Props: map[string]string{
			"city": fmt.Sprintf("c%d", i%4),
			"name": fmt.Sprintf("n%d", i),
		}}
	}
	var edges []layout.Edge
	for i := 0; i < 80; i++ {
		edges = append(edges, layout.Edge{
			Src: int64(i % 25), Dst: int64((i * 7) % 25), Type: int64(i % 2),
			Timestamp: int64(i), Props: map[string]string{"w": fmt.Sprint(i)},
		})
	}
	sh, err := Build(nodes, edges, ns, es, Options{SamplingRate: 4})
	if err != nil {
		t.Fatal(err)
	}
	return sh, nodes, edges
}

func TestShardQueries(t *testing.T) {
	sh, nodes, _ := buildTestShard(t)
	for _, n := range nodes {
		props, ok := sh.Nodes().GetAllProps(n.ID)
		if !ok || !reflect.DeepEqual(props, n.Props) {
			t.Fatalf("node %d: %v, want %v", n.ID, props, n.Props)
		}
	}
	ref, ok := sh.Edges().GetEdgeRecord(3, 0)
	if !ok || ref.Count == 0 {
		t.Fatal("edge record missing")
	}
	if sh.CompressedSize() <= 0 || sh.RawSize() <= 0 {
		t.Fatal("size accounting broken")
	}
	if sh.NumNodes() != len(nodes) {
		t.Fatalf("NumNodes = %d", sh.NumNodes())
	}
}

func TestShardSerializationRoundTrip(t *testing.T) {
	sh, nodes, _ := buildTestShard(t)
	blob, err := sh.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	med := memsim.Unlimited()
	got, err := UnmarshalShard(blob, med)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		props, ok := got.Nodes().GetAllProps(n.ID)
		if !ok || !reflect.DeepEqual(props, n.Props) {
			t.Fatalf("after round trip, node %d: %v", n.ID, props)
		}
	}
	wantRef, _ := sh.Edges().GetEdgeRecord(3, 0)
	gotRef, ok := got.Edges().GetEdgeRecord(3, 0)
	if !ok || gotRef.Count != wantRef.Count {
		t.Fatalf("edge record after round trip: %+v want %+v", gotRef, wantRef)
	}
	if got.RawSize() != sh.RawSize() {
		t.Fatalf("raw size %d != %d", got.RawSize(), sh.RawSize())
	}
}

func TestUnmarshalShardErrors(t *testing.T) {
	if _, err := UnmarshalShard([]byte("not a shard"), nil); err == nil {
		t.Error("expected error on garbage")
	}
}
