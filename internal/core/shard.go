// Package core implements a ZipG shard: one partition of the graph held
// as a compressed NodeFile and EdgeFile (§3.3) queried directly in their
// compressed form (§3.4). Shards are immutable once built — all mutation
// happens in the LogStore and in the store-level update pointers and
// deletion bitmaps (§3.5) — so shard reads take no locks.
package core

import (
	"fmt"
	"sort"

	"zipg/internal/bitutil"
	"zipg/internal/layout"
	"zipg/internal/memsim"
	"zipg/internal/parallel"
	"zipg/internal/succinct"
)

// Options configures shard construction.
type Options struct {
	// SamplingRate is Succinct's α (0 = default).
	SamplingRate int
	// Medium is the simulated storage for this shard's structures
	// (nil = unlimited).
	Medium *memsim.Medium
	// Codec selects how each region's integer codec is chosen (Ψ and
	// sample arrays in the succinct stores, plus the NodeFile and
	// EdgeFile offset columns). Zero value = bitutil.CodecAuto.
	Codec bitutil.CodecPolicy
}

// Shard is one immutable graph partition in ZipG layout over compressed
// storage.
type Shard struct {
	nodes *layout.NodeFileView
	edges *layout.EdgeFileView

	nodeStore *succinct.Store
	edgeStore *succinct.Store

	// edgeSrcs lists the distinct source IDs with edge records in this
	// shard (needed to enumerate records, e.g. for compaction: a shard
	// frozen from a LogStore may hold edges for sources whose node
	// records live in other fragments).
	edgeSrcs []layout.NodeID
	// The edge record index lists every record's key and offset in file
	// order (used by edge-property search and by batch reads, which
	// locate records by binary search here instead of compressed
	// search). Stored as columns: the key columns stay raw for the
	// binary search, while the offset column — strictly increasing — is
	// a codec region like the NodeFile offsets.
	edgeIdxSrcs  []layout.NodeID
	edgeIdxTypes []layout.EdgeType
	edgeIdxOffs  bitutil.Seq
	// edgeFormat is the EdgeFile record format (layout.EdgeFormat*);
	// shards deserialized from pre-hot-header builds carry Legacy.
	edgeFormat int

	// Trial measurements that chose the offset-column codecs (empty for
	// forced policies and loaded shards).
	nodeOffTrials []bitutil.TrialResult
	edgeIdxTrials []bitutil.TrialResult

	rawNodeBytes int
	rawEdgeBytes int
}

// Build compresses the given nodes and edges into a shard. The schemas
// must be the system-global ones so delimiters agree across shards.
func Build(nodes []layout.Node, edges []layout.Edge, nodeSchema, edgeSchema *layout.PropertySchema, opts Options) (*Shard, error) {
	nodeFlat, ids, offs, err := layout.BuildNodeFile(nodes, nodeSchema)
	if err != nil {
		return nil, fmt.Errorf("core: node file: %w", err)
	}
	// New shards always build with the hot-field header; pre-hot shards
	// deserialize with the legacy format recorded in their wire form.
	edgeFlat, edgeIndex, err := layout.BuildEdgeFileFormat(edges, edgeSchema, layout.EdgeFormatHot)
	if err != nil {
		return nil, fmt.Errorf("core: edge file: %w", err)
	}
	succOpts := succinct.Options{SamplingRate: opts.SamplingRate, Medium: opts.Medium, Codec: opts.Codec}
	// The NodeFile and EdgeFile suffix arrays are independent; build them
	// concurrently on the shared pool (each Build stays sequential inside).
	stores := parallel.Map("core.build_succinct", 2, func(i int) *succinct.Store {
		if i == 0 {
			return succinct.Build(nodeFlat, succOpts)
		}
		return succinct.Build(edgeFlat, succOpts)
	})
	s := &Shard{
		nodeStore:    stores[0],
		edgeStore:    stores[1],
		edgeSrcs:     distinctSources(edges),
		edgeFormat:   layout.EdgeFormatHot,
		rawNodeBytes: len(nodeFlat),
		rawEdgeBytes: len(edgeFlat),
	}
	s.setEdgeIndex(edgeIndex, opts.Codec)
	succinct.CountCodecRegion(s.edgeIdxOffs)
	var nodeOffs bitutil.Seq
	nodeOffs, s.nodeOffTrials = bitutil.EncodeWithPolicy(layout.OffsetsToUint64(offs), true, 0, opts.Codec)
	succinct.CountCodecRegion(nodeOffs)
	s.nodes = layout.NewNodeFileViewSeq(s.nodeStore, nodeSchema, ids, nodeOffs, opts.Medium)
	s.edges = layout.NewEdgeFileViewFormat(s.edgeStore, edgeSchema, s.edgeFormat)
	return s, nil
}

// setEdgeIndex splits the build-time edge record index into its key
// columns and the codec-encoded offset column.
func (s *Shard) setEdgeIndex(index []layout.EdgeRecordIndex, policy bitutil.CodecPolicy) {
	s.edgeIdxSrcs = make([]layout.NodeID, len(index))
	s.edgeIdxTypes = make([]layout.EdgeType, len(index))
	offVals := make([]uint64, len(index))
	for i, r := range index {
		s.edgeIdxSrcs[i] = r.Src
		s.edgeIdxTypes[i] = r.Type
		offVals[i] = uint64(r.Offset)
	}
	s.edgeIdxOffs, s.edgeIdxTrials = bitutil.EncodeWithPolicy(offVals, true, 0, policy)
}

// edgeIndexSlice materializes the columnar edge record index back into
// row form (the whole-file scans that want rows are already O(records)).
func (s *Shard) edgeIndexSlice() []layout.EdgeRecordIndex {
	out := make([]layout.EdgeRecordIndex, len(s.edgeIdxSrcs))
	for i := range out {
		out[i] = layout.EdgeRecordIndex{Src: s.edgeIdxSrcs[i], Type: s.edgeIdxTypes[i], Offset: int64(s.edgeIdxOffs.Get(i))}
	}
	return out
}

// Nodes returns the shard's NodeFile view.
func (s *Shard) Nodes() *layout.NodeFileView { return s.nodes }

// Edges returns the shard's EdgeFile view.
func (s *Shard) Edges() *layout.EdgeFileView { return s.edges }

// NumNodes returns how many node records the shard holds.
func (s *Shard) NumNodes() int { return s.nodes.NumNodes() }

// CompressedSize returns the shard's compressed footprint in bytes
// (excluding the node offset index, which is uncompressed by design).
func (s *Shard) CompressedSize() int {
	return s.nodeStore.CompressedSize() + s.edgeStore.CompressedSize()
}

// RawSize returns the size of the uncompressed flat files.
func (s *Shard) RawSize() int { return s.rawNodeBytes + s.rawEdgeBytes }

// EdgeSources returns the distinct source node IDs that have edge
// records in this shard, ascending.
func (s *Shard) EdgeSources() []layout.NodeID { return s.edgeSrcs }

// EdgeFormat returns the shard's EdgeFile record format.
func (s *Shard) EdgeFormat() int { return s.edgeFormat }

// SamplingRate returns the α the shard's succinct stores were built with.
func (s *Shard) SamplingRate() int { return s.nodeStore.SamplingRate() }

// EdgeRecordOffset locates the (src, etype) record's start offset via
// binary search over the in-memory build index — O(log records) with no
// compressed-store work, where GetEdgeRecord pays a full backward
// search. The batch read paths use this to turn record location into
// pure arithmetic before the sorted sweep.
func (s *Shard) EdgeRecordOffset(src layout.NodeID, etype layout.EdgeType) (int64, bool) {
	lo, hi := 0, len(s.edgeIdxSrcs)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.edgeIdxSrcs[mid] < src || (s.edgeIdxSrcs[mid] == src && s.edgeIdxTypes[mid] < etype) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.edgeIdxSrcs) && s.edgeIdxSrcs[lo] == src && s.edgeIdxTypes[lo] == etype {
		return int64(s.edgeIdxOffs.Get(lo)), true
	}
	return 0, false
}

// FindEdges returns the edges in this shard whose property lists match
// every pair exactly — the edge-search extension of §3.3.
func (s *Shard) FindEdges(props map[string]string) []layout.EdgeMatch {
	return s.edges.FindEdges(s.edgeIndexSlice(), props)
}

// CodecReport describes every codec-encoded region of the shard: the
// two succinct stores' Ψ/SA/ISA regions plus the NodeFile and EdgeFile
// offset columns, with per-region codec, size and measured decode speed.
func (s *Shard) CodecReport() []succinct.RegionCodec {
	var out []succinct.RegionCodec
	for _, rc := range s.nodeStore.RegionCodecs() {
		rc.Region = "node/" + rc.Region
		out = append(out, rc)
	}
	for _, rc := range s.edgeStore.RegionCodecs() {
		rc.Region = "edge/" + rc.Region
		out = append(out, rc)
	}
	out = append(out, succinct.SeqRegionCodec("node/offsets", s.nodes.OffsetsSeq(), s.nodeOffTrials))
	out = append(out, succinct.SeqRegionCodec("edge/index", s.edgeIdxOffs, s.edgeIdxTrials))
	return out
}

// distinctSources extracts the sorted distinct edge sources.
func distinctSources(edges []layout.Edge) []layout.NodeID {
	seen := make(map[layout.NodeID]bool, len(edges))
	var out []layout.NodeID
	for _, e := range edges {
		if !seen[e.Src] {
			seen[e.Src] = true
			out = append(out, e.Src)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
