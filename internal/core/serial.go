package core

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"zipg/internal/bitutil"
	"zipg/internal/layout"
	"zipg/internal/memsim"
	"zipg/internal/succinct"
)

// shardWire is the on-disk/wire form of a shard: the two serialized
// succinct stores, the uncompressed node index, and the schema specs
// needed to rebuild the views. This is the "serialized flat files"
// persistence of §4.1.
type shardWire struct {
	NodeStore    []byte
	EdgeStore    []byte
	NodeIDs      []int64
	NodeOffsets  []int64
	EdgeSrcs     []int64
	EdgeIndex    []layout.EdgeRecordIndex
	NodeSchema   layout.SchemaSpec
	EdgeSchema   layout.SchemaSpec
	RawNodeBytes int
	RawEdgeBytes int
	// EdgeFormat versions the EdgeFile record layout. Gob leaves absent
	// fields zero, so shards serialized before the hot-field header
	// decode to layout.EdgeFormatLegacy and keep parsing correctly.
	EdgeFormat int
	// Codec-layer fields. When NodeOffsetsEnc is non-nil it carries the
	// codec-tagged node offset column and replaces NodeOffsets; when
	// EdgeIdxOffsEnc is non-nil the three EdgeIdx* columns replace
	// EdgeIndex. Pre-codec shards decode with these fields nil (gob
	// default, like EdgeFormat) and load through the legacy fields; an
	// all-legacy shard also marshals through the legacy fields, keeping
	// its wire form identical to pre-codec builds.
	NodeOffsetsEnc []byte
	EdgeIdxSrcs    []int64
	EdgeIdxTypes   []int64
	EdgeIdxOffsEnc []byte
}

// MarshalBinary serializes the shard.
func (s *Shard) MarshalBinary() ([]byte, error) {
	w := shardWire{
		NodeStore:    s.nodeStore.MarshalBinary(),
		EdgeStore:    s.edgeStore.MarshalBinary(),
		NodeIDs:      s.nodes.IDs(),
		EdgeSrcs:     s.edgeSrcs,
		NodeSchema:   s.nodes.Schema().Spec(),
		EdgeSchema:   s.edges.Schema().Spec(),
		RawNodeBytes: s.rawNodeBytes,
		RawEdgeBytes: s.rawEdgeBytes,
		EdgeFormat:   s.edgeFormat,
	}
	nodeOffs := s.nodes.OffsetsSeq()
	_, nodeLegacy := nodeOffs.(*bitutil.MonotoneVector)
	_, edgeLegacy := s.edgeIdxOffs.(*bitutil.MonotoneVector)
	if nodeLegacy && edgeLegacy {
		w.NodeOffsets = s.nodes.Offsets()
		w.EdgeIndex = s.edgeIndexSlice()
	} else {
		w.NodeOffsetsEnc = bitutil.AppendSeq(nil, nodeOffs)
		w.EdgeIdxSrcs = s.edgeIdxSrcs
		w.EdgeIdxTypes = s.edgeIdxTypes
		w.EdgeIdxOffsEnc = bitutil.AppendSeq(nil, s.edgeIdxOffs)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, fmt.Errorf("core: marshal shard: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalShard reconstructs a shard serialized by MarshalBinary,
// placing it on med (nil = unlimited).
func UnmarshalShard(data []byte, med *memsim.Medium) (*Shard, error) {
	var w shardWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return nil, fmt.Errorf("core: unmarshal shard: %w", err)
	}
	nodeSchema, err := w.NodeSchema.Build()
	if err != nil {
		return nil, fmt.Errorf("core: node schema: %w", err)
	}
	edgeSchema, err := w.EdgeSchema.Build()
	if err != nil {
		return nil, fmt.Errorf("core: edge schema: %w", err)
	}
	s := &Shard{rawNodeBytes: w.RawNodeBytes, rawEdgeBytes: w.RawEdgeBytes, edgeSrcs: w.EdgeSrcs, edgeFormat: w.EdgeFormat}
	if s.nodeStore, err = succinct.UnmarshalStore(w.NodeStore, med); err != nil {
		return nil, fmt.Errorf("core: node store: %w", err)
	}
	if s.edgeStore, err = succinct.UnmarshalStore(w.EdgeStore, med); err != nil {
		return nil, fmt.Errorf("core: edge store: %w", err)
	}
	var nodeOffs bitutil.Seq
	if w.NodeOffsetsEnc != nil {
		if nodeOffs, _, err = bitutil.DecodeSeq(w.NodeOffsetsEnc); err != nil {
			return nil, fmt.Errorf("core: node offsets: %w", err)
		}
	} else {
		nodeOffs = layout.PackOffsets(w.NodeOffsets)
	}
	if w.EdgeIdxOffsEnc != nil {
		s.edgeIdxSrcs = w.EdgeIdxSrcs
		s.edgeIdxTypes = w.EdgeIdxTypes
		if s.edgeIdxOffs, _, err = bitutil.DecodeSeq(w.EdgeIdxOffsEnc); err != nil {
			return nil, fmt.Errorf("core: edge index offsets: %w", err)
		}
	} else {
		s.setEdgeIndex(w.EdgeIndex, bitutil.CodecForceLegacy)
	}
	s.nodes = layout.NewNodeFileViewSeq(s.nodeStore, nodeSchema, w.NodeIDs, nodeOffs, med)
	s.edges = layout.NewEdgeFileViewFormat(s.edgeStore, edgeSchema, s.edgeFormat)
	return s, nil
}
