package core

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"zipg/internal/layout"
	"zipg/internal/memsim"
	"zipg/internal/succinct"
)

// shardWire is the on-disk/wire form of a shard: the two serialized
// succinct stores, the uncompressed node index, and the schema specs
// needed to rebuild the views. This is the "serialized flat files"
// persistence of §4.1.
type shardWire struct {
	NodeStore    []byte
	EdgeStore    []byte
	NodeIDs      []int64
	NodeOffsets  []int64
	EdgeSrcs     []int64
	EdgeIndex    []layout.EdgeRecordIndex
	NodeSchema   layout.SchemaSpec
	EdgeSchema   layout.SchemaSpec
	RawNodeBytes int
	RawEdgeBytes int
	// EdgeFormat versions the EdgeFile record layout. Gob leaves absent
	// fields zero, so shards serialized before the hot-field header
	// decode to layout.EdgeFormatLegacy and keep parsing correctly.
	EdgeFormat int
}

// MarshalBinary serializes the shard.
func (s *Shard) MarshalBinary() ([]byte, error) {
	w := shardWire{
		NodeStore:    s.nodeStore.MarshalBinary(),
		EdgeStore:    s.edgeStore.MarshalBinary(),
		NodeIDs:      s.nodes.IDs(),
		EdgeSrcs:     s.edgeSrcs,
		EdgeIndex:    s.edgeIndex,
		NodeSchema:   s.nodes.Schema().Spec(),
		EdgeSchema:   s.edges.Schema().Spec(),
		RawNodeBytes: s.rawNodeBytes,
		RawEdgeBytes: s.rawEdgeBytes,
		EdgeFormat:   s.edgeFormat,
	}
	w.NodeOffsets = s.nodes.Offsets()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, fmt.Errorf("core: marshal shard: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalShard reconstructs a shard serialized by MarshalBinary,
// placing it on med (nil = unlimited).
func UnmarshalShard(data []byte, med *memsim.Medium) (*Shard, error) {
	var w shardWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return nil, fmt.Errorf("core: unmarshal shard: %w", err)
	}
	nodeSchema, err := w.NodeSchema.Build()
	if err != nil {
		return nil, fmt.Errorf("core: node schema: %w", err)
	}
	edgeSchema, err := w.EdgeSchema.Build()
	if err != nil {
		return nil, fmt.Errorf("core: edge schema: %w", err)
	}
	s := &Shard{rawNodeBytes: w.RawNodeBytes, rawEdgeBytes: w.RawEdgeBytes, edgeSrcs: w.EdgeSrcs, edgeIndex: w.EdgeIndex, edgeFormat: w.EdgeFormat}
	if s.nodeStore, err = succinct.UnmarshalStore(w.NodeStore, med); err != nil {
		return nil, fmt.Errorf("core: node store: %w", err)
	}
	if s.edgeStore, err = succinct.UnmarshalStore(w.EdgeStore, med); err != nil {
		return nil, fmt.Errorf("core: edge store: %w", err)
	}
	s.nodes = layout.NewNodeFileView(s.nodeStore, nodeSchema, w.NodeIDs, w.NodeOffsets, med)
	s.edges = layout.NewEdgeFileViewFormat(s.edgeStore, edgeSchema, s.edgeFormat)
	return s, nil
}
