// Package zipg is a memory-efficient graph store for interactive
// queries — a Go implementation of "ZipG: A Memory-efficient Graph Store
// for Interactive Queries" (SIGMOD 2017).
//
// ZipG stores a property graph (nodes, edges, and their property lists)
// in a compressed representation built on Succinct-style compressed
// suffix arrays, and executes a functionally rich query API (Table 1 of
// the paper) directly on that representation: random access to node and
// edge properties, substring-indexed node search, per-type edge records
// with timestamp binary search, and a log-structured write path with
// fanned updates.
//
// Quick start:
//
//	g, err := zipg.Compress(zipg.GraphData{Nodes: nodes, Edges: edges}, zipg.Options{})
//	age, _ := g.GetNodeProperty(alice, []string{"age"})
//	friends := g.GetNeighborIDs(alice, friendType, map[string]string{"location": "Ithaca"})
//
// See the examples/ directory for runnable programs; the distributed
// deployment lives in internal/cluster and is served by cmd/zipg-server.
package zipg

import (
	"fmt"
	"io"
	"sync"
	"time"

	"zipg/internal/bitutil"
	"zipg/internal/graphapi"
	"zipg/internal/layout"
	"zipg/internal/memsim"
	"zipg/internal/store"
	"zipg/internal/temporal"
)

// Data-model types (§2.1 of the paper).
type (
	// NodeID identifies a node.
	NodeID = graphapi.NodeID
	// EdgeType identifies an edge's kind.
	EdgeType = graphapi.EdgeType
	// Node is a node with its property list.
	Node = graphapi.Node
	// Edge is a directed, typed, optionally timestamped edge with its
	// property list.
	Edge = graphapi.Edge
	// EdgeData is the (destination, timestamp, properties) triplet stored
	// per edge.
	EdgeData = graphapi.EdgeData
	// EdgeRecord references all edges of one EdgeType incident on a node.
	EdgeRecord = graphapi.EdgeRecord
)

// WildcardType selects every EdgeType in queries accepting a type.
const WildcardType = graphapi.WildcardType

// WildcardTime leaves a time bound open in GetEdgeRange.
const WildcardTime = graphapi.WildcardTime

// GraphData is the input to Compress: the full property graph.
type GraphData struct {
	Nodes []Node
	Edges []Edge
}

// Options configures Compress.
type Options struct {
	// NumShards is the number of hash partitions (default 1; the paper
	// defaults to one per core).
	NumShards int
	// SamplingRate is the succinct store's α: larger is smaller but
	// slower (default 32).
	SamplingRate int
	// LogStoreThreshold is the write-log size that triggers compression
	// into a new immutable shard (default 4 MiB).
	LogStoreThreshold int64
	// Medium, if set, places the store on a simulated storage hierarchy
	// (used by the benchmark harness to model memory pressure).
	Medium *memsim.Medium
	// Codec names the integer-codec policy for shard regions (Ψ, SA/ISA
	// samples, offset columns): "auto" picks per region by trial
	// encoding; "legacy", "simple8b" or "varint" force one codec
	// everywhere. Empty = "auto".
	Codec string
	// AutoTuneAlpha lets Compact retune each shard's sampling rate α
	// from the reads it drew since the last compaction: hot shards get
	// denser samples, cold shards compress harder.
	AutoTuneAlpha bool
	// DisableGroupCommit makes every append take the store lock
	// individually instead of batching through the group committer.
	// Exists for the ingest-bench ablation; leave false in production.
	DisableGroupCommit bool
	// BackgroundCompaction moves write-log rollover compression off the
	// write path: crossing the threshold seals the log O(1) and a
	// background worker compresses it. Implied by CompactInterval or
	// CompactAfterRollovers.
	BackgroundCompaction bool
	// CompactInterval, when positive, runs a full online compaction
	// every interval on the background worker.
	CompactInterval time.Duration
	// CompactAfterRollovers, when positive, runs a full online
	// compaction once that many log rollovers have accumulated since
	// the last one.
	CompactAfterRollovers int
}

// Graph is a single-machine ZipG store. It is safe for concurrent use;
// reads on compressed data are lock-free.
type Graph struct {
	s *store.Store

	// temporal engine, built lazily by Temporal() (see temporal.go).
	tempOnce sync.Once
	temp     *temporal.Engine
}

// Compress builds the memory-efficient representation of a graph
// (Table 1's compress(graph)). Property schemas are derived from the
// data: every property ID appearing on any node (resp. edge) becomes part
// of the global node (resp. edge) schema.
func Compress(data GraphData, opts Options) (*Graph, error) {
	nodeSchema, edgeSchema, err := DeriveSchemas(data)
	if err != nil {
		return nil, err
	}
	return CompressWithSchemas(data, nodeSchema, edgeSchema, opts)
}

// DeriveSchemas scans the graph and constructs the node and edge
// property schemas. Exposed so that callers who will append new
// properties later can extend the ID sets up front.
func DeriveSchemas(data GraphData) (nodeSchema, edgeSchema *layout.PropertySchema, err error) {
	nodeIDs := make(map[string]bool)
	maxNodeVal := 1
	for _, n := range data.Nodes {
		for k, v := range n.Props {
			nodeIDs[k] = true
			if len(v) > maxNodeVal {
				maxNodeVal = len(v)
			}
		}
	}
	edgeIDs := make(map[string]bool)
	maxEdgeVal := 1
	for _, e := range data.Edges {
		for k, v := range e.Props {
			edgeIDs[k] = true
			if len(v) > maxEdgeVal {
				maxEdgeVal = len(v)
			}
		}
	}
	// Leave headroom for longer values appended after compression.
	if nodeSchema, err = layout.NewPropertySchema(keys(nodeIDs), maxNodeVal*4); err != nil {
		return nil, nil, fmt.Errorf("zipg: node schema: %w", err)
	}
	if edgeSchema, err = layout.NewPropertySchema(keys(edgeIDs), maxEdgeVal*4); err != nil {
		return nil, nil, fmt.Errorf("zipg: edge schema: %w", err)
	}
	return nodeSchema, edgeSchema, nil
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// CompressWithSchemas is Compress with caller-supplied schemas (needed
// when several stores — e.g. cluster servers — must agree on delimiters,
// or when properties not present in the initial data will be appended).
func CompressWithSchemas(data GraphData, nodeSchema, edgeSchema *layout.PropertySchema, opts Options) (*Graph, error) {
	policy := bitutil.CodecAuto
	if opts.Codec != "" {
		var err error
		if policy, err = bitutil.PolicyByName(opts.Codec); err != nil {
			return nil, fmt.Errorf("zipg: %w", err)
		}
	}
	s, err := store.New(data.Nodes, data.Edges, nodeSchema, edgeSchema, store.Config{
		NumShards:             opts.NumShards,
		SamplingRate:          opts.SamplingRate,
		Medium:                opts.Medium,
		LogStoreThreshold:     opts.LogStoreThreshold,
		Codec:                 policy,
		AutoTuneAlpha:         opts.AutoTuneAlpha,
		DisableGroupCommit:    opts.DisableGroupCommit,
		BackgroundCompaction:  opts.BackgroundCompaction,
		CompactInterval:       opts.CompactInterval,
		CompactAfterRollovers: opts.CompactAfterRollovers,
	})
	if err != nil {
		return nil, err
	}
	return &Graph{s: s}, nil
}

// GetNodeProperty returns property values for a node; nil propertyIDs is
// the wildcard: the values of every property the node has, in
// lexicographic property-ID order. The second result reports whether the
// node exists. Empty values and absent properties are equivalent (the
// layout encodes both as length zero).
func (g *Graph) GetNodeProperty(id NodeID, propertyIDs []string) ([]string, bool) {
	if len(propertyIDs) == 0 {
		vals, ok := g.s.GetNodeProps(id, nil)
		if !ok {
			return nil, false
		}
		// Drop absent properties; schema IDs are already sorted.
		out := make([]string, 0, len(vals))
		for _, v := range vals {
			if v != "" {
				out = append(out, v)
			}
		}
		return out, true
	}
	return g.s.GetNodeProps(id, propertyIDs)
}

// ObjGetBatch answers GetNodeProperty(id, nil) for every id in one
// vectorized pass over the compressed shards (locality-sorted succinct
// kernels, shared decode cursors). Results are positional and identical
// to a scalar loop: absent or deleted nodes yield (nil, false).
func (g *Graph) ObjGetBatch(ids []NodeID) ([][]string, []bool) {
	vals, oks := g.s.ObjGetBatch(ids)
	for i, ok := range oks {
		if !ok {
			vals[i] = nil
			continue
		}
		// Same wildcard filtering as GetNodeProperty: drop absent
		// properties (encoded as empty values).
		out := make([]string, 0, len(vals[i]))
		for _, v := range vals[i] {
			if v != "" {
				out = append(out, v)
			}
		}
		vals[i] = out
	}
	return vals, oks
}

// AssocRangeBatch answers, per request, the edges of (ID, Type) at
// TimeOrder [Idx, min(Idx+Limit, count)) in one vectorized pass;
// missing records yield nil. Identical to a scalar GetEdgeRecord +
// Data loop over the same requests.
func (g *Graph) AssocRangeBatch(reqs []graphapi.AssocRangeReq) ([][]EdgeData, error) {
	sreqs := make([]store.AssocRangeReq, len(reqs))
	for i, r := range reqs {
		sreqs[i] = store.AssocRangeReq{ID: r.ID, Type: r.Type, Idx: r.Idx, Limit: r.Limit}
	}
	return g.s.AssocRangeBatch(sreqs)
}

// GetNodeProperties returns the node's full property map.
func (g *Graph) GetNodeProperties(id NodeID) (map[string]string, bool) {
	return g.s.GetAllNodeProps(id)
}

// GetNodeIDs returns every live node whose properties exactly match all
// pairs in props (Table 1's get_node_ids).
func (g *Graph) GetNodeIDs(props map[string]string) []NodeID {
	return g.s.FindNodes(props)
}

// GetNeighborIDs returns neighbors of id along etype (WildcardType for
// any) whose properties match props (nil = no filter). Per the paper it
// avoids a join: neighbors are enumerated and each is checked.
func (g *Graph) GetNeighborIDs(id NodeID, etype EdgeType, props map[string]string) []NodeID {
	return g.s.NeighborIDs(id, etype, props)
}

// GetEdgeRecord returns the edge record for (id, etype) — Table 1's
// get_edge_record. Use GetEdgeRecords for the wildcard form.
func (g *Graph) GetEdgeRecord(id NodeID, etype EdgeType) (EdgeRecord, bool) {
	r, ok := g.s.GetEdgeRecord(id, etype)
	if !ok {
		return nil, false
	}
	return recordAdapter{r}, true
}

// GetEdgeRecords returns the edge records of every type incident on id.
func (g *Graph) GetEdgeRecords(id NodeID) []EdgeRecord {
	rs := g.s.GetEdgeRecords(id)
	out := make([]EdgeRecord, len(rs))
	for i, r := range rs {
		out[i] = recordAdapter{r}
	}
	return out
}

// recordAdapter lifts the store's EdgeRecord to the shared interface.
type recordAdapter struct{ r *store.EdgeRecord }

func (a recordAdapter) Count() int { return a.r.Count() }

func (a recordAdapter) Range(tLo, tHi int64) (int, int) {
	tLo, tHi = graphapi.TimeBounds(tLo, tHi)
	return a.r.GetEdgeRange(tLo, tHi)
}

func (a recordAdapter) Data(timeOrder int) (EdgeData, error) { return a.r.GetEdgeData(timeOrder) }

func (a recordAdapter) Destinations() []NodeID { return a.r.Destinations() }

// AppendNode inserts a new node or replaces an existing one (Table 1's
// append(nodeID, PropertyList)).
func (g *Graph) AppendNode(id NodeID, props map[string]string) error {
	return g.s.AppendNode(id, props)
}

// AppendEdge appends one edge (Table 1's append(nodeID, edgeType,
// edgeRecord)).
func (g *Graph) AppendEdge(e Edge) error { return g.s.AppendEdge(e) }

// DeleteNode lazily deletes a node (Table 1's delete(nodeID)).
func (g *Graph) DeleteNode(id NodeID) error {
	g.s.DeleteNode(id)
	return nil
}

// DeleteEdges deletes all (src, etype, dst) edges (Table 1's
// delete(nodeID, edgeType, destinationID)), returning how many edges
// were removed.
func (g *Graph) DeleteEdges(src NodeID, etype EdgeType, dst NodeID) (int, error) {
	return g.s.DeleteEdges(src, etype, dst), nil
}

// CompressedFootprint returns the store's total compressed size in
// bytes, including the live write log.
func (g *Graph) CompressedFootprint() int64 { return g.s.CompressedFootprint() }

// RawSize returns the uncompressed flat-file size of the initial graph.
func (g *Graph) RawSize() int64 { return g.s.RawSize() }

// FragmentsOf returns how many storage fragments currently hold data for
// a node (1 + its update-pointer count); see §3.5 and Appendix A.
func (g *Graph) FragmentsOf(id NodeID) int { return g.s.FragmentsOf(id) }

// Save serializes the whole store — compressed shards, the live write
// log, update pointers and deletion state — to w (§4.1's persistence as
// serialized flat files).
func (g *Graph) Save(w io.Writer) error { return g.s.Save(w) }

// Load reconstructs a graph serialized by Save, placing it on med (nil
// for an unlimited medium).
func Load(r io.Reader, med *memsim.Medium) (*Graph, error) {
	s, err := store.Load(r, med)
	if err != nil {
		return nil, err
	}
	return &Graph{s: s}, nil
}

// FindEdges returns every live edge whose property list exactly matches
// all pairs in props — edge-property search, the extension §3.3 of the
// paper sketches ("can be trivially extended ... using ideas similar to
// NodeFile"). Like GetNodeIDs it must consult every fragment.
func (g *Graph) FindEdges(props map[string]string) []Edge {
	return g.s.FindEdges(props)
}

// Compact runs the store's garbage collection (§4.1): every fragment —
// primary shards, frozen write-log generations and the live log — is
// merged into fresh compressed shards, lazily-deleted data is dropped
// physically, and all update pointers reset. Afterwards every node's
// data is whole again (FragmentsOf == 1). Compaction is online: the
// rebuild runs against an immutable snapshot while reads and writes
// proceed, with only two brief pauses to seal the log and swap in the
// fresh shards.
func (g *Graph) Compact() error { return g.s.Compact() }

// Close stops the background compaction worker, if one is running, and
// waits for any in-flight build to finish. The graph remains readable
// after Close; further compaction only happens via explicit Compact
// calls. Safe to call multiple times.
func (g *Graph) Close() { g.s.Close() }

// Store exposes the underlying store for advanced integrations (the
// benchmark harness and the cluster server build on it).
func (g *Graph) Store() *store.Store { return g.s }

// Compile-time check: Graph implements the shared store interface used
// by all workload drivers, plus its vectorized batch extension.
var (
	_ graphapi.Store      = (*Graph)(nil)
	_ graphapi.BatchStore = (*Graph)(nil)
)
