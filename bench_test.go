package zipg_test

// Benchmark harness entry points: one testing.B benchmark per table and
// figure of the paper's evaluation, each delegating to the experiment
// runners in internal/bench at a benchmark-friendly scale. Run the full
// suite with:
//
//	go test -bench=. -benchmem
//
// For paper-scale tables (bigger datasets, more operations, the full
// printed output) use the standalone harness:
//
//	go run ./cmd/zipg-bench -experiment all -base 1048576 -ops 4000

import (
	"fmt"
	"runtime"
	"testing"

	"zipg"
	"zipg/internal/bench"
	"zipg/internal/gen"
	"zipg/internal/parallel"
	"zipg/internal/workloads"
)

// benchOpts keeps each experiment's end-to-end runtime in the seconds
// range; shapes are scale-free (see internal/bench).
var benchOpts = bench.Options{BaseBytes: 64 << 10, Ops: 400}

func runExperiment(b *testing.B, name string, opts bench.Options) {
	b.Helper()
	fn, ok := bench.Experiments[name]
	if !ok {
		b.Fatalf("unknown experiment %q", name)
	}
	for i := 0; i < b.N; i++ {
		r, err := fn(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			b.Logf("\n%s", r.Format())
		}
	}
}

// BenchmarkTable4Datasets regenerates Table 4 (dataset statistics).
func BenchmarkTable4Datasets(b *testing.B) { runExperiment(b, "table4", benchOpts) }

// BenchmarkFig5StorageFootprint regenerates Figure 5 (storage footprint
// ratios for all six datasets across the five systems).
func BenchmarkFig5StorageFootprint(b *testing.B) { runExperiment(b, "fig5", benchOpts) }

// BenchmarkTable5MemoryFit regenerates Table 5 (which datasets fit each
// system's memory budget).
func BenchmarkTable5MemoryFit(b *testing.B) { runExperiment(b, "table5", benchOpts) }

// BenchmarkFig6TAO regenerates Figure 6 (single-server TAO throughput,
// overall mix plus the top five component queries).
func BenchmarkFig6TAO(b *testing.B) { runExperiment(b, "fig6", benchOpts) }

// BenchmarkFig7LinkBench regenerates Figure 7 (single-server LinkBench
// throughput, write-heavy mix).
func BenchmarkFig7LinkBench(b *testing.B) { runExperiment(b, "fig7", benchOpts) }

// BenchmarkFig8GraphSearch regenerates Figure 8 (single-server Graph
// Search throughput, GS1-GS5).
func BenchmarkFig8GraphSearch(b *testing.B) { runExperiment(b, "fig8", benchOpts) }

// BenchmarkFig9Distributed regenerates Figure 9 (10-server cluster
// throughput for TAO, LinkBench and Graph Search; ZipG vs Titan).
func BenchmarkFig9Distributed(b *testing.B) { runExperiment(b, "fig9", benchOpts) }

// BenchmarkFig10Fragmentation regenerates Figure 10 (CDF of per-node
// fragmentation under the LinkBench write mix).
func BenchmarkFig10Fragmentation(b *testing.B) { runExperiment(b, "fig10", benchOpts) }

// BenchmarkFig11FragmentationGrowth regenerates Figure 11 (average and
// maximum fragmentation versus executed queries).
func BenchmarkFig11FragmentationGrowth(b *testing.B) { runExperiment(b, "fig11", benchOpts) }

// BenchmarkFig12RegularPathQueries regenerates Figure 12 (latency of the
// 50 gMark-style path queries, ZipG vs Neo4j-Tuned).
func BenchmarkFig12RegularPathQueries(b *testing.B) { runExperiment(b, "fig12", benchOpts) }

// BenchmarkFig13BFS regenerates Figure 13 (breadth-first traversal
// latency at depth 5).
func BenchmarkFig13BFS(b *testing.B) { runExperiment(b, "fig13", benchOpts) }

// BenchmarkFig14Joins regenerates Figure 14 (ZipG's GS2/GS3 with and
// without joins).
func BenchmarkFig14Joins(b *testing.B) {
	runExperiment(b, "fig14", bench.Options{BaseBytes: 128 << 10, Ops: 200})
}

// --- micro-benchmarks of the public API on a realistic graph ---

func benchGraph(b *testing.B) (*zipg.Graph, *gen.Dataset) {
	b.Helper()
	d := gen.DatasetSpec{
		Name: "micro", Kind: gen.RealWorld,
		TargetBytes: 256 << 10, AvgDegree: 15, NumEdgeTypes: 5, Seed: 5150,
	}.Generate()
	g, err := zipg.Compress(zipg.GraphData{Nodes: d.Nodes, Edges: d.Edges}, zipg.Options{NumShards: 2})
	if err != nil {
		b.Fatal(err)
	}
	return g, d
}

// BenchmarkObjGet measures get_node_property(id, *) — TAO's obj_get.
func BenchmarkObjGet(b *testing.B) {
	g, d := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.GetNodeProperty(int64(i%d.NumNodes()), nil)
	}
}

// BenchmarkAssocRange measures Algorithm 1 on the compressed store.
func BenchmarkAssocRange(b *testing.B) {
	g, d := benchGraph(b)
	tao := workloads.TAO{S: g}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tao.AssocRange(int64(i%d.NumNodes()), int64(i%5), 0, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAssocCount measures the metadata-only count path.
func BenchmarkAssocCount(b *testing.B) {
	g, d := benchGraph(b)
	tao := workloads.TAO{S: g}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tao.AssocCount(int64(i%d.NumNodes()), int64(i%5))
	}
}

// BenchmarkGetNodeIDs measures compressed substring search
// (get_node_ids).
func BenchmarkGetNodeIDs(b *testing.B) {
	g, d := benchGraph(b)
	pool := d.Vocab["prop00"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.GetNodeIDs(map[string]string{"prop00": pool[i%len(pool)]})
	}
}

// BenchmarkNeighborFilter measures the no-join neighbor+property plan.
func BenchmarkNeighborFilter(b *testing.B) {
	g, d := benchGraph(b)
	pool := d.Vocab["prop01"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.GetNeighborIDs(int64(i%d.NumNodes()), zipg.WildcardType,
			map[string]string{"prop01": pool[i%len(pool)]})
	}
}

// BenchmarkAppendEdge measures the LogStore write path.
func BenchmarkAppendEdge(b *testing.B) {
	g, d := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := g.AppendEdge(zipg.Edge{
			Src: int64(i % d.NumNodes()), Dst: int64((i + 1) % d.NumNodes()),
			Type: int64(i % 5), Timestamp: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompress measures end-to-end compression throughput.
func BenchmarkCompress(b *testing.B) {
	d := gen.DatasetSpec{
		Name: "compress", Kind: gen.RealWorld,
		TargetBytes: 128 << 10, AvgDegree: 10, NumEdgeTypes: 3, Seed: 99,
	}.Generate()
	b.SetBytes(d.RawBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := zipg.Compress(zipg.GraphData{Nodes: d.Nodes, Edges: d.Edges}, zipg.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchWorkerCounts returns the pool sizes each parallel benchmark
// compares: the sequential baseline plus NumCPU (when they differ).
func benchWorkerCounts() []int {
	if n := runtime.NumCPU(); n > 1 {
		return []int{1, n}
	}
	return []int{1, 2}
}

// BenchmarkParallelFindNodes measures multi-fragment get_node_ids at
// pool size 1 (sequential baseline) and NumCPU, on a store fragmented
// across ≥8 fragments by forced LogStore rollovers.
func BenchmarkParallelFindNodes(b *testing.B) {
	d := gen.DatasetSpec{
		Name: "pfind", Kind: gen.RealWorld,
		TargetBytes: 256 << 10, AvgDegree: 15, NumEdgeTypes: 5, Seed: 5151,
	}.Generate()
	g, err := zipg.Compress(zipg.GraphData{Nodes: d.Nodes, Edges: d.Edges}, zipg.Options{
		NumShards:         4,
		LogStoreThreshold: 16 << 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; g.Store().Rollovers() < 4; i++ {
		src := d.Nodes[i%len(d.Nodes)]
		if err := g.AppendNode(int64(d.NumNodes()+i), src.Props); err != nil {
			b.Fatal(err)
		}
	}
	pool := d.Vocab["prop00"]
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			prev := parallel.SetWorkers(w)
			defer parallel.SetWorkers(prev)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.GetNodeIDs(map[string]string{"prop00": pool[i%len(pool)]})
			}
		})
	}
}

// BenchmarkParallelCompress measures multi-shard compression at pool
// size 1 and NumCPU (4 independent shards build concurrently).
func BenchmarkParallelCompress(b *testing.B) {
	d := gen.DatasetSpec{
		Name: "pcompress", Kind: gen.RealWorld,
		TargetBytes: 128 << 10, AvgDegree: 10, NumEdgeTypes: 3, Seed: 98,
	}.Generate()
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			prev := parallel.SetWorkers(w)
			defer parallel.SetWorkers(prev)
			b.SetBytes(d.RawBytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := zipg.Compress(zipg.GraphData{Nodes: d.Nodes, Edges: d.Edges}, zipg.Options{NumShards: 4}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Example demonstrates the API end to end (shown on the package docs).
func Example() {
	g, err := zipg.Compress(zipg.GraphData{
		Nodes: []zipg.Node{
			{ID: 0, Props: map[string]string{"name": "alice", "location": "Ithaca"}},
			{ID: 1, Props: map[string]string{"name": "bob", "location": "Princeton"}},
		},
		Edges: []zipg.Edge{{Src: 0, Dst: 1, Type: 0, Timestamp: 42}},
	}, zipg.Options{})
	if err != nil {
		panic(err)
	}
	name, _ := g.GetNodeProperty(1, []string{"name"})
	fmt.Println(name[0], g.GetNeighborIDs(0, 0, nil))
	// Output: bob [1]
}
