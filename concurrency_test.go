package zipg

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentReadersAndWriters exercises §4.1's concurrency-control
// claim: compressed shards are immutable and read lock-free; locks
// protect only the LogStore, update pointers and deletion state. The
// race detector validates the synchronization; the assertions validate
// that every read observes a consistent store.
func TestConcurrentReadersAndWriters(t *testing.T) {
	var data GraphData
	for i := 0; i < 60; i++ {
		data.Nodes = append(data.Nodes, Node{ID: NodeID(i), Props: map[string]string{
			"name": fmt.Sprintf("user%d", i),
			"city": []string{"Ithaca", "Berkeley"}[i%2],
		}})
	}
	for i := 0; i < 240; i++ {
		data.Edges = append(data.Edges, Edge{
			Src: NodeID(i % 60), Dst: NodeID((i * 7) % 60),
			Type: EdgeType(i % 3), Timestamp: int64(i),
		})
	}
	g, err := Compress(data, Options{
		NumShards:         4,
		SamplingRate:      8,
		LogStoreThreshold: 20 << 10, // small enough to roll over mid-test
	})
	if err != nil {
		t.Fatal(err)
	}

	var writers, readers sync.WaitGroup
	stop := make(chan struct{})

	// Writers: appends, updates, deletes.
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 300; i++ {
				id := NodeID(1000 + w*1000 + i)
				if err := g.AppendNode(id, map[string]string{"name": "w", "city": "Ithaca"}); err != nil {
					t.Errorf("AppendNode: %v", err)
					return
				}
				if err := g.AppendEdge(Edge{Src: NodeID(i % 60), Dst: id, Type: 0, Timestamp: int64(i)}); err != nil {
					t.Errorf("AppendEdge: %v", err)
					return
				}
				if i%17 == 0 {
					g.DeleteNode(NodeID(i % 60))
				}
				if i%13 == 0 {
					if _, err := g.DeleteEdges(NodeID(i%60), 0, NodeID((i*7)%60)); err != nil {
						t.Errorf("DeleteEdges: %v", err)
						return
					}
				}
			}
		}(w)
	}

	// Readers: every read-path API, continuously until writers finish.
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := NodeID(i % 60)
				if vals, ok := g.GetNodeProperty(id, []string{"name"}); ok && len(vals) != 1 {
					t.Errorf("GetNodeProperty returned %d values", len(vals))
					return
				}
				g.GetNeighborIDs(id, WildcardType, nil)
				if rec, ok := g.GetEdgeRecord(id, 0); ok {
					n := rec.Count()
					if n > 0 {
						if _, err := rec.Data(n - 1); err != nil {
							t.Errorf("Data: %v", err)
							return
						}
					}
					rec.Range(WildcardTime, WildcardTime)
				}
				if i%50 == 0 {
					g.GetNodeIDs(map[string]string{"city": "Berkeley"})
				}
			}
		}(r)
	}

	// Wait for writers, then stop readers.
	writers.Wait()
	close(stop)
	readers.Wait()

	// Post-conditions: all surviving appended nodes are readable.
	for w := 0; w < 2; w++ {
		for i := 0; i < 300; i++ {
			id := NodeID(1000 + w*1000 + i)
			if _, ok := g.GetNodeProperty(id, nil); !ok {
				t.Fatalf("appended node %d lost", id)
			}
		}
	}
}
